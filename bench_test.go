package matex

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"github.com/matex-sim/matex/internal/circuit"
	"github.com/matex-sim/matex/internal/dist"
	"github.com/matex-sim/matex/internal/experiments"
	"github.com/matex-sim/matex/internal/krylov"
	"github.com/matex-sim/matex/internal/pdn"
	"github.com/matex-sim/matex/internal/sparse"
	"github.com/matex-sim/matex/internal/sweep"
	"github.com/matex-sim/matex/internal/transient"
	"github.com/matex-sim/matex/internal/waveform"
)

// The benchmarks regenerate each paper table/figure at reduced scale so the
// full suite stays laptop-friendly; cmd/experiments runs the full versions.
// One benchmark per table row family / figure, as the reproduction contract
// requires.

func benchSystem(b *testing.B, name string, scale float64) *circuit.System {
	b.Helper()
	spec, err := pdn.IBMCase(name, scale)
	if err != nil {
		b.Fatal(err)
	}
	ckt, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func stiffBenchSystem(b *testing.B, spread float64) *circuit.System {
	b.Helper()
	spec := pdn.StiffMeshSpec{
		NX: 8, NY: 8, RSeg: 1, CBase: 1e-12, Spread: spread,
		Drive: &waveform.Pulse{V1: 0, V2: 1e-3, Delay: 0.02e-9, Rise: 0.01e-9, Width: 0.1e-9, Fall: 0.01e-9},
	}
	ckt, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// --- Table 1: stiff RC mesh, MEXP vs I-MATEX vs R-MATEX ------------------

func benchTable1(b *testing.B, method transient.Method, spread float64) {
	sys := stiffBenchSystem(b, spread)
	evals := make([]float64, 0, 61)
	for t := 0.0; t <= 0.3e-9+1e-18; t += 5e-12 {
		evals = append(evals, t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := transient.Simulate(sys, method, transient.Options{
			Tstop: 0.3e-9, EvalTimes: evals, Tol: 1e-7, Gamma: 5e-12,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Stats.MA(), "m_a")
			b.ReportMetric(float64(res.Stats.MP()), "m_p")
		}
	}
}

func BenchmarkTable1_MEXP_Stiff1e8(b *testing.B)    { benchTable1(b, transient.MEXP, 2.1e8) }
func BenchmarkTable1_IMATEX_Stiff1e8(b *testing.B)  { benchTable1(b, transient.IMATEX, 2.1e8) }
func BenchmarkTable1_RMATEX_Stiff1e8(b *testing.B)  { benchTable1(b, transient.RMATEX, 2.1e8) }
func BenchmarkTable1_MEXP_Stiff1e12(b *testing.B)   { benchTable1(b, transient.MEXP, 2.1e12) }
func BenchmarkTable1_IMATEX_Stiff1e12(b *testing.B) { benchTable1(b, transient.IMATEX, 2.1e12) }
func BenchmarkTable1_RMATEX_Stiff1e12(b *testing.B) { benchTable1(b, transient.RMATEX, 2.1e12) }
func BenchmarkTable1_MEXP_Stiff1e16(b *testing.B)   { benchTable1(b, transient.MEXP, 2.1e16) }
func BenchmarkTable1_IMATEX_Stiff1e16(b *testing.B) { benchTable1(b, transient.IMATEX, 2.1e16) }
func BenchmarkTable1_RMATEX_Stiff1e16(b *testing.B) { benchTable1(b, transient.RMATEX, 2.1e16) }

// --- Table 2: IBM-style grids, adaptive TR vs I-MATEX vs R-MATEX ----------

func benchTable2(b *testing.B, method transient.Method) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := transient.Options{Tstop: 10e-9, Tol: 1e-6}
		if method == transient.TRAdaptive {
			opts.Tol = 1e-4
		}
		if _, err := transient.Simulate(sys, method, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_TRAdaptive_ibmpg1t(b *testing.B) { benchTable2(b, transient.TRAdaptive) }
func BenchmarkTable2_IMATEX_ibmpg1t(b *testing.B)     { benchTable2(b, transient.IMATEX) }
func BenchmarkTable2_RMATEX_ibmpg1t(b *testing.B)     { benchTable2(b, transient.RMATEX) }

// BenchmarkTable2_TRAdaptiveCached_ibmpg1t is the cached counterpart of the
// TR(adpt) row: step quantization plus the shared factorization cache turn
// most re-factorizations into cache hits. Compare factorizations/cache_hits
// against BenchmarkTable2_TRAdaptive_ibmpg1t to see the Eq. 11 cost term
// shrink.
func BenchmarkTable2_TRAdaptiveCached_ibmpg1t(b *testing.B) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	cache := sparse.NewCache(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := transient.Simulate(sys, transient.TRAdaptive, transient.Options{
			Tstop: 10e-9, Tol: 1e-4, Cache: cache,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.Factorizations), "factorizations")
			b.ReportMetric(float64(res.Stats.CacheHits), "cache_hits")
		}
	}
}

// --- Table 3: fixed-step TR (1000 steps) vs distributed MATEX -------------

func BenchmarkTable3_TR1000_ibmpg1t(b *testing.B) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := transient.Simulate(sys, transient.TRFixed, transient.Options{
			Tstop: 10e-9, Step: 10e-12,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.SolvePairs), "subst_pairs")
		}
	}
}

func BenchmarkTable3_MATEXDist_ibmpg1t(b *testing.B) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rep, err := dist.Run(sys, dist.Config{
			Method: transient.RMATEX, Tstop: 10e-9, Tol: 1e-6, Gamma: 1e-10,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rep.Groups), "groups")
		}
	}
}

// BenchmarkTable3_MATEXDistCached_ibmpg1t reuses one factorization cache
// across iterations — the steady-state cost of a scheduler issuing repeated
// distributed runs (every run after the first is refactorization-free).
func BenchmarkTable3_MATEXDistCached_ibmpg1t(b *testing.B) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	cache := sparse.NewCache(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := dist.Run(sys, dist.Config{
			Method: transient.RMATEX, Tstop: 10e-9, Tol: 1e-6, Gamma: 1e-10, Cache: cache,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 1 && res.Stats.Factorizations != 0 {
			b.Fatalf("warm run performed %d factorizations, want 0", res.Stats.Factorizations)
		}
	}
}

// --- Symmetric Lanczos fast path vs Arnoldi (PR 3) -------------------------
//
// The stock ibmpg decks are quasi-static at their own time scale (node time
// constants ~10 fs against 100 ps segments), which collapses every subspace
// to m ≈ 1-4 and measures nothing. Raising the node capacitance to 0.5 pF
// puts the mesh dynamics at the segment scale, giving the realistic m ≈ 15
// subspaces the fast-path comparison is about. Regenerate BENCH_PR3.json
// with scripts/bench.sh after touching any of this.

func krylovBenchSystem(b *testing.B) *circuit.System {
	b.Helper()
	spec, err := pdn.IBMCase("ibmpg1t", 1.0)
	if err != nil {
		b.Fatal(err)
	}
	spec.CNode = 5e-13
	ckt, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// benchKrylovSpot measures one transition spot's full Krylov pipeline — the
// solver's hot path: generate the subspace at the spot, then evaluate every
// snapshot of the segment's output grid by subspace reuse. The Arnoldi path
// pays a dense expm per snapshot; the Lanczos spectral form pays O(m²).
func benchKrylovSpot(b *testing.B, mode transient.Method, method krylov.Method, snapshots int) {
	sys := krylovBenchSystem(b)
	n := sys.N
	count := &krylov.Counters{}
	var op *krylov.Op
	var v []float64
	switch mode {
	case transient.RMATEX:
		gamma := 1e-10
		factS, err := sparse.Factor(sparse.Add(1, sys.C, gamma, sys.G), sparse.FactorAuto, sparse.OrderRCM)
		if err != nil {
			b.Fatal(err)
		}
		op = krylov.NewRationalOp(factS, sys.C, sys.G, gamma, count)
		op.ClearSegment()
		v = make([]float64, n+2)
	case transient.IMATEX:
		factG, err := sparse.Factor(sys.G, sparse.FactorAuto, sparse.OrderRCM)
		if err != nil {
			b.Fatal(err)
		}
		op = krylov.NewInvertedOp(factG, sys.C, sys.G, count)
		v = make([]float64, n)
	default:
		b.Fatalf("unsupported mode %v", mode)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		v[i] = rng.NormFloat64()
	}
	const h = 1e-10 // one GTS segment on the 100 ps corner lattice
	hCheck := []float64{h}
	opts := krylov.Options{Tol: 1e-7, MaxDim: 256, Method: method}
	ws := krylov.DefaultWorkspaces.Get()
	defer krylov.DefaultWorkspaces.Put(ws)
	opts.Workspace = ws
	dst := make([]float64, op.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count.Dims = count.Dims[:0] // steady state: no slice growth
		sub, err := krylov.Generate(op, v, hCheck, opts)
		if err != nil {
			b.Fatal(err)
		}
		for s := 1; s <= snapshots; s++ {
			if err := sub.EvalExp(h*float64(s)/float64(snapshots), dst); err != nil {
				b.Fatal(err)
			}
		}
		if i == 0 {
			b.ReportMetric(float64(sub.Dim()), "dim")
		}
	}
}

func BenchmarkKrylovSpot_RMATEX_Arnoldi(b *testing.B) {
	benchKrylovSpot(b, transient.RMATEX, krylov.MethodArnoldi, 16)
}
func BenchmarkKrylovSpot_RMATEX_Lanczos(b *testing.B) {
	benchKrylovSpot(b, transient.RMATEX, krylov.MethodLanczos, 16)
}
func BenchmarkKrylovSpot_IMATEX_Arnoldi(b *testing.B) {
	benchKrylovSpot(b, transient.IMATEX, krylov.MethodArnoldi, 16)
}
func BenchmarkKrylovSpot_IMATEX_Lanczos(b *testing.B) {
	benchKrylovSpot(b, transient.IMATEX, krylov.MethodLanczos, 16)
}

// Generation only (no snapshot reuse): isolates the three-term recurrence
// against modified Gram-Schmidt plus the dense Hessenberg check machinery.
// On solve-dominated systems the gap narrows — the solves are shared — so
// this pair bounds the fast path's generation-side win from below, and its
// allocs/op column documents the zero-allocation arena contract.
func BenchmarkKrylovGenerate_RMATEX_Arnoldi(b *testing.B) {
	benchKrylovSpot(b, transient.RMATEX, krylov.MethodArnoldi, 0)
}
func BenchmarkKrylovGenerate_RMATEX_Lanczos(b *testing.B) {
	benchKrylovSpot(b, transient.RMATEX, krylov.MethodLanczos, 0)
}

// End-to-end: the full R-MATEX transient on the same mesh, Arnoldi-pinned vs
// auto (Lanczos on eligible spots), sharing a factorization cache across
// iterations so the subspace work dominates.
func benchKrylovE2E(b *testing.B, method krylov.Method) {
	sys := krylovBenchSystem(b)
	cache := sparse.NewCache(0)
	evals := make([]float64, 0, 501)
	for t := 0.0; t <= 10e-9+1e-18; t += 20e-12 {
		evals = append(evals, t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := transient.Simulate(sys, transient.RMATEX, transient.Options{
			Tstop: 10e-9, Tol: 1e-7, EvalTimes: evals, Cache: cache, Krylov: method,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.LanczosSpots), "lanczos_spots")
			b.ReportMetric(res.Stats.MA(), "m_a")
		}
	}
}

func BenchmarkKrylovE2E_RMATEX_Arnoldi(b *testing.B) { benchKrylovE2E(b, krylov.MethodArnoldi) }
func BenchmarkKrylovE2E_RMATEX_Auto(b *testing.B)    { benchKrylovE2E(b, krylov.MethodAuto) }

// --- Factorization engine (PR 4): symbolic/numeric split, parallel solves --
//
// The mesh is the ibmpg1t topology at 2× pitch (n = 3564): large enough that
// the solver layer dominates and the minimum-degree level schedule clears
// the parallel crossover, small enough for the CI smoke run. Minimum degree
// is the ordering of interest here — its elimination tree is bushy (wide
// level sets) and its fill on these meshes is ~3× below RCM's, which the
// bucketed implementation makes affordable.

func factorBenchMatrix(b *testing.B) *sparse.CSC {
	b.Helper()
	spec, err := pdn.IBMCase("ibmpg1t", 2.0)
	if err != nil {
		b.Fatal(err)
	}
	spec.CNode = 5e-13
	ckt, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := circuit.Stamp(ckt, circuit.StampOptions{CollapseSupplies: true})
	if err != nil {
		b.Fatal(err)
	}
	return sparse.Add(1, sys.C, 1e-10, sys.G)
}

// BenchmarkFactor is the old cost of every γ-grid shift: a from-scratch
// factorization including ordering and symbolic analysis.
func BenchmarkFactor_ibmpg1t2x(b *testing.B) {
	a := factorBenchMatrix(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := sparse.FactorLDLT(a, sparse.OrderMinDegree)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(f.NNZ()), "factor_nnz")
		}
	}
}

// BenchmarkRefactor is the new steady-state cost: numeric refactorization
// against the shared symbolic analysis — the acceptance contract is ≥ 3×
// faster than BenchmarkFactor at 0 allocs/op.
func BenchmarkRefactor_ibmpg1t2x(b *testing.B) {
	a := factorBenchMatrix(b)
	sym, err := sparse.AnalyzeLDLT(a, sparse.OrderMinDegree)
	if err != nil {
		b.Fatal(err)
	}
	f, err := sym.Refactor(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sym.RefactorInto(f, a); err != nil {
			b.Fatal(err)
		}
	}
}

func solveBenchFactor(b *testing.B) (*sparse.LDLT, []float64) {
	b.Helper()
	a := factorBenchMatrix(b)
	f, err := sparse.FactorLDLT(a, sparse.OrderMinDegree)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	return f, rhs
}

func BenchmarkSolveSeq_ibmpg1t2x(b *testing.B) {
	f, rhs := solveBenchFactor(b)
	x := make([]float64, f.N())
	work := make([]float64, f.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SolveWith(x, rhs, work)
	}
}

// blockDiag tiles copies of a down the diagonal: the multi-domain PDN
// shape (separate power domains share no nodes), whose elimination forest
// is what the parallel solve's task schedule exploits.
func blockDiag(b *testing.B, a *sparse.CSC, copies int) *sparse.CSC {
	b.Helper()
	n := a.Rows
	tr := sparse.NewTriplet(n*copies, n*copies)
	for c := 0; c < copies; c++ {
		off := c * n
		for j := 0; j < n; j++ {
			for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
				tr.Add(off+a.Rowidx[p], off+j, a.Values[p])
			}
		}
	}
	return tr.ToCSC()
}

func domainBenchFactor(b *testing.B) (*sparse.LDLT, []float64) {
	b.Helper()
	a := blockDiag(b, factorBenchMatrix(b), 4)
	f, err := sparse.FactorLDLT(a, sparse.OrderMinDegree)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	return f, rhs
}

// BenchmarkSolveSeq_4dom / BenchmarkSolvePar_4dom: the level-scheduled
// parallel solve on a four-domain system (block-diagonal ibmpg1t×4), where
// the elimination forest forks into independent per-domain tasks. On one
// strongly coupled mesh the root separators hold over half the fill, no
// usable task partition exists and ParSolveWith correctly stays sequential
// — which is why the parallel rows benchmark the multi-domain shape.
func BenchmarkSolveSeq_4dom(b *testing.B) {
	f, rhs := domainBenchFactor(b)
	x := make([]float64, f.N())
	work := make([]float64, f.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SolveWith(x, rhs, work)
	}
}

func BenchmarkSolvePar_4dom(b *testing.B) {
	f, rhs := domainBenchFactor(b)
	if !f.ParallelizableSolve() {
		b.Fatal("bench factor below the parallel crossover")
	}
	x := make([]float64, f.N())
	work := make([]float64, f.N())
	workers := runtime.GOMAXPROCS(0)
	b.ReportMetric(float64(workers), "workers")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ParSolveWith(x, rhs, work, workers)
	}
}

// benchSolveMulti compares one blocked panel solve against k sequential
// solves of the same right-hand sides (the BenchmarkSolveSeq_k* baselines):
// the factor is traversed once per panel, so the win is the amortized
// memory traffic.
func benchSolveMulti(b *testing.B, k int, blocked bool) {
	f, rhs := solveBenchFactor(b)
	n := f.N()
	xs := make([][]float64, k)
	bs := make([][]float64, k)
	for r := 0; r < k; r++ {
		xs[r] = make([]float64, n)
		bs[r] = rhs
	}
	work := make([]float64, n*k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if blocked {
			f.SolveMultiWith(xs, bs, work)
		} else {
			for r := 0; r < k; r++ {
				f.SolveWith(xs[r], bs[r], work[:n])
			}
		}
	}
}

func BenchmarkSolveSeq_k4_ibmpg1t2x(b *testing.B)   { benchSolveMulti(b, 4, false) }
func BenchmarkSolveMulti_k4_ibmpg1t2x(b *testing.B) { benchSolveMulti(b, 4, true) }
func BenchmarkSolveSeq_k8_ibmpg1t2x(b *testing.B)   { benchSolveMulti(b, 8, false) }
func BenchmarkSolveMulti_k8_ibmpg1t2x(b *testing.B) { benchSolveMulti(b, 8, true) }

// BenchmarkSolveSeq/Par_mesh96nd: one strongly coupled 96×96 mesh — the
// single-domain shape where the old level schedule found no usable task
// partition (the fill concentrates in the top separators). Nested
// dissection exposes the separator tree explicitly, so this row is
// parallelizable only under OrderND; it benchmarks the satellite claim
// directly rather than relying on the block-diagonal 4dom shortcut. The
// same shape carries the engine-comparison rows: under nested dissection
// its separators amalgamate into wide panels, so auto analysis picks the
// supernodal engine (the headline rows) while the *Scalar_mesh96nd rows
// pin SNNever for the side-by-side.
func mesh96CSC(b *testing.B) *sparse.CSC {
	b.Helper()
	side := 96
	n := side * side
	tr := sparse.NewTriplet(n, n)
	id := func(i, j int) int { return i*side + j }
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			c := id(i, j)
			tr.Add(c, c, 4.5)
			if i+1 < side {
				tr.Add(c, id(i+1, j), -1)
				tr.Add(id(i+1, j), c, -1)
			}
			if j+1 < side {
				tr.Add(c, id(i, j+1), -1)
				tr.Add(id(i, j+1), c, -1)
			}
		}
	}
	return tr.ToCSC()
}

func meshNDBenchAnalysis(b *testing.B, mode sparse.SupernodeMode) (*sparse.Symbolic, *sparse.LDLT, *sparse.CSC, []float64) {
	b.Helper()
	a := mesh96CSC(b)
	sym, err := sparse.AnalyzeLDLTParams(a, sparse.OrderND, sparse.SupernodeParams{Mode: mode})
	if err != nil {
		b.Fatal(err)
	}
	f, err := sym.Refactor(a)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	return sym, f, a, rhs
}

func meshNDBenchFactor(b *testing.B) (*sparse.LDLT, []float64) {
	b.Helper()
	_, f, _, rhs := meshNDBenchAnalysis(b, sparse.SNAuto)
	return f, rhs
}

func benchRefactorMesh(b *testing.B, mode sparse.SupernodeMode) {
	sym, f, a, _ := meshNDBenchAnalysis(b, mode)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sym.RefactorInto(f, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefactor_mesh96nd(b *testing.B)       { benchRefactorMesh(b, sparse.SNAuto) }
func BenchmarkRefactorScalar_mesh96nd(b *testing.B) { benchRefactorMesh(b, sparse.SNNever) }

func BenchmarkSolveSeqScalar_mesh96nd(b *testing.B) {
	_, f, _, rhs := meshNDBenchAnalysis(b, sparse.SNNever)
	x := make([]float64, f.N())
	work := make([]float64, f.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SolveWith(x, rhs, work)
	}
}

func BenchmarkSolveSeq_mesh96nd(b *testing.B) {
	f, rhs := meshNDBenchFactor(b)
	x := make([]float64, f.N())
	work := make([]float64, f.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SolveWith(x, rhs, work)
	}
}

func BenchmarkSolvePar_mesh96nd(b *testing.B) {
	f, rhs := meshNDBenchFactor(b)
	if !f.ParallelizableSolve() {
		b.Fatal("coupled mesh not parallelizable under nested dissection")
	}
	x := make([]float64, f.N())
	work := make([]float64, f.N())
	workers := runtime.GOMAXPROCS(0)
	b.ReportMetric(float64(workers), "workers")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ParSolveWith(x, rhs, work, workers)
	}
}

// --- Fig. 5: rational-Krylov error vs step size ----------------------------

func BenchmarkFig5_ErrorSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series, err := experiments.RunFig5(experiments.Fig5Config{N: 12, Dims: []int{2, 4, 6}, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.PrintFig5(io.Discard, series)
		}
	}
}

// --- Ablations: design choices called out in DESIGN.md ---------------------

// Ablation: snapshot reuse. Disabling reuse would regenerate a subspace at
// every output point; we emulate the non-reuse cost by running R-MATEX with
// outputs only at transition spots vs a dense output grid, showing the
// per-snapshot cost stays substitution-free (time grows only with expm
// evaluations, not solves).
func BenchmarkAblation_SnapshotReuse_DenseOutputs(b *testing.B) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	evals := make([]float64, 0, 1001)
	for t := 0.0; t <= 10e-9+1e-18; t += 10e-12 {
		evals = append(evals, t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := transient.Simulate(sys, transient.RMATEX, transient.Options{
			Tstop: 10e-9, Tol: 1e-6, EvalTimes: evals,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.SolvePairs), "subst_pairs")
			b.ReportMetric(float64(res.Stats.ExpmEvals), "expm_evals")
		}
	}
}

// Ablation: fill-reducing ordering for the up-front factorization.
func benchOrdering(b *testing.B, order sparse.Ordering) {
	sys := benchSystem(b, "ibmpg2t", 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transient.Simulate(sys, transient.RMATEX, transient.Options{
			Tstop: 10e-9, Tol: 1e-6, Ordering: order,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Ordering_RCM(b *testing.B)    { benchOrdering(b, sparse.OrderRCM) }
func BenchmarkAblation_Ordering_MinDeg(b *testing.B) { benchOrdering(b, sparse.OrderMinDegree) }

// --- PR 10: scenario sweeps ----------------------------------------------

// sweepCorners builds k pairwise non-collinear corner variants of the
// deck (each scales a different load source by a different factor), so
// the sweep measures panel batching rather than linearity sharing.
func sweepCorners(sys *circuit.System, k int) []sweep.Variant {
	var loads []string
	for _, in := range sys.Inputs {
		if !in.Supply {
			loads = append(loads, in.Name)
		}
	}
	vs := make([]sweep.Variant, k)
	for i := range vs {
		vs[i] = sweep.Variant{
			Name:         fmt.Sprintf("c%d", i),
			SourceScales: map[string]float64{loads[i%len(loads)]: 1 + 0.1*float64(i+1)},
		}
	}
	return vs
}

// sweepCornerFamilies builds the EXPERIMENTS.md corner set: nfam hot-spot
// activity patterns (pattern i puts 1.5x on load i and 0.75x on the rest),
// each run at a low (0.875x) and a high (1.25x) global intensity. The
// values are dyadic, so each pattern's two corners are bitwise-collinear:
// every family plans as one sup+load superposition split and the shared
// supplies-only lane dedupes across all families — 2·nfam variants cost
// nfam load lanes plus one supply lane, batched into one panel fleet.
func sweepCornerFamilies(sys *circuit.System, nfam int) []sweep.Variant {
	var loads []string
	for _, in := range sys.Inputs {
		if !in.Supply {
			loads = append(loads, in.Name)
		}
	}
	var vs []sweep.Variant
	for i := 0; i < nfam; i++ {
		pattern := make(map[string]float64, len(loads))
		for j, name := range loads {
			if j == i%len(loads) {
				pattern[name] = 1.5
			} else {
				pattern[name] = 0.75
			}
		}
		vs = append(vs,
			sweep.Variant{Name: fmt.Sprintf("p%dlo", i), Scale: 0.875, SourceScales: pattern},
			sweep.Variant{Name: fmt.Sprintf("p%dhi", i), Scale: 1.25, SourceScales: pattern})
	}
	return vs
}

// BenchmarkSweepSolo is the per-variant baseline: one solo transient run
// of the deck with a warm factorization cache — what each of a sweep's N
// variants would cost if simulated alone. The benchcmp gate asserts
// BenchmarkSweep_k8 ≤ 5× this row (8 variants for under 5 solo walls).
func BenchmarkSweepSolo(b *testing.B) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	cache := sparse.NewCache(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transient.Simulate(sys, transient.RMATEX, transient.Options{
			Tstop: 10e-9, Tol: 1e-6, Cache: cache,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSweep(b *testing.B, variants []sweep.Variant) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	cache := sparse.NewCache(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(sys, variants, sweep.Options{
			Base:   transient.Options{Tstop: 10e-9, Tol: 1e-6, Cache: cache},
			Method: transient.RMATEX,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.Lanes), "lanes")
			b.ReportMetric(float64(res.Stats.Sim.Factorizations), "factorizations")
			b.ReportMetric(res.Stats.Panel.MeanWidth(), "mean_panel_width")
		}
	}
}

// BenchmarkSweep_k4 runs 4 pairwise non-collinear per-source corners: no
// linearity sharing is possible, so the row isolates what panel batching
// alone buys over 4 solo walls.
func BenchmarkSweep_k4(b *testing.B) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	benchSweep(b, sweepCorners(sys, 4))
}

// BenchmarkSweep_k8 runs the EXPERIMENTS.md 8-corner set (4 collinear
// hot-spot families x 2 intensities): collinearity sharing plans 5 lanes
// for 8 variants and batching couples them, the regime the ≤5x-solo
// benchcmp gate protects.
func BenchmarkSweep_k8(b *testing.B) {
	sys := benchSystem(b, "ibmpg1t", 0.25)
	benchSweep(b, sweepCornerFamilies(sys, 4))
}
